// Command cosimd serves co-simulation sweeps over HTTP: a multi-tenant
// front end to the same CombinedSweep engine the cosim CLI runs, with
// admission control, per-tenant weighted fair queuing, a shared
// execute-once/replay-many tracestore, and a content-addressed result
// cache. Results are bit-identical to `cosim sweep` on the same spec.
//
// Endpoints:
//
//	POST /v1/sweeps             submit a spec (X-Tenant names the tenant);
//	                            201 + job id, or 429 + Retry-After when
//	                            the admission queue is full
//	GET  /v1/sweeps/{id}        job status; result JSON once done
//	GET  /v1/sweeps/{id}/events SSE progress: queued, capturing,
//	                            replaying, per-config completion, done
//	GET  /v1/healthz            liveness
//	GET  /v1/version            git revision
//	GET  /v1/statusz            queue/tracestore/result-cache snapshot
//	GET  /metrics               Prometheus text (cosimd_* + simulator)
//
// Flags:
//
//	-addr             listen address (default :8344)
//	-workers n        concurrent sweep executions (default 2)
//	-queue-cap n      admission queue bound (default 256)
//	-tenant-weights   comma list of tenant=weight DRR overrides
//	-result-cache-mb  result cache budget (default 256)
//	-trace-mb         tracestore resident budget (default 1024)
//	-trace-dir        spill captured traces to this directory
//	-retain n         finished jobs kept queryable (default 4096)
//	-drain d          shutdown drain timeout (default 10s)
//	-manifest path    append per-request JSONL manifests (span trees)
//	-manifest-max-mb  rotate the manifest file past this size (default 64)
//	-trace-slow d     requests slower than d count as slow and trigger a
//	                  CPU profile capture (0 disables)
//	-profile-dir      where slow-request CPU profiles land (default ".")
//
// SIGINT/SIGTERM drains gracefully: admission stops, queued jobs fail
// loudly, in-flight sweeps get the drain timeout to finish, and the
// HTTP server shuts down via http.Server.Shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cmpmem/internal/server"
	"cmpmem/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cosimd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cosimd", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	workers := fs.Int("workers", server.DefaultWorkers, "concurrent sweep executions")
	queueCap := fs.Int("queue-cap", server.DefaultQueueCap, "admission queue bound")
	weightsFlag := fs.String("tenant-weights", "", "comma list of tenant=weight fair-queue overrides")
	resultMB := fs.Int("result-cache-mb", server.DefaultResultCacheBytes>>20, "result cache budget in MiB")
	traceMB := fs.Int("trace-mb", 1024, "tracestore resident budget in MiB")
	traceDir := fs.String("trace-dir", "", "spill captured traces to this directory")
	retain := fs.Int("retain", server.DefaultRetainJobs, "finished jobs kept queryable")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain timeout")
	manifestPath := fs.String("manifest", "", "append per-request JSONL manifests to this file")
	manifestMaxMB := fs.Int("manifest-max-mb", 64, "rotate the manifest file past this many MiB (0 = unbounded)")
	traceSlow := fs.Duration("trace-slow", 0, "requests slower than this trigger a CPU profile capture (0 disables)")
	profileDir := fs.String("profile-dir", ".", "directory for slow-request CPU profiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseWeights(*weightsFlag)
	if err != nil {
		return err
	}
	var manifest *telemetry.ManifestWriter
	if *manifestPath != "" {
		manifest, err = telemetry.OpenManifestFileLimits(*manifestPath, uint64(*manifestMaxMB)<<20, 0)
		if err != nil {
			return err
		}
		defer manifest.Close()
	}

	// The default registry powers the simulator-side counters (tracestore,
	// emulators); the server registers its cosimd_* metrics into the same
	// one so /metrics is a single scrape.
	reg := telemetry.Enable()
	telemetry.PublishExpvar(reg)

	s := server.New(server.Config{
		Workers:          *workers,
		QueueCap:         *queueCap,
		TenantWeights:    weights,
		ResultCacheBytes: uint64(*resultMB) << 20,
		TraceStoreBytes:  uint64(*traceMB) << 20,
		TraceDir:         *traceDir,
		RetainJobs:       *retain,
		Registry:         reg,
		Manifest:         manifest,
		SlowTrace:        *traceSlow,
		ProfileDir:       *profileDir,
	})
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "cosimd: serving http://%s (rev %s, %d workers, queue cap %d)\n",
		ln.Addr(), telemetry.GitRev(), *workers, *queueCap)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "cosimd: %v, draining (timeout %v)\n", sig, *drain)
	}
	signal.Stop(sigc)

	// Wind down the worker pool and the HTTP server together: Shutdown
	// closes the server's stop channel first, which unblocks open SSE
	// streams so the HTTP drain can complete; Drain then lets in-flight
	// requests finish before connections close.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutErr := make(chan error, 1)
	go func() { shutErr <- s.Shutdown(ctx) }()
	if err := telemetry.Drain(srv, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "cosimd: http drain:", err)
	}
	if err := <-shutErr; err != nil {
		return fmt.Errorf("worker drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "cosimd: drained cleanly")
	return nil
}

// parseWeights parses "tenantA=3,tenantB=1" into a weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("tenant-weights: %q is not tenant=weight", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenant-weights: bad weight %q for %q", v, k)
		}
		out[k] = w
	}
	return out, nil
}
