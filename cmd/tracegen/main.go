// Command tracegen runs a workload on the virtual platform and captures
// its in-window memory-reference trace to a binary file that
// cmd/cachesim can replay:
//
//	tracegen -workload FIMI -threads 8 -scale 0.0625 -o fimi8.trace
//
// -codec selects the wire format: v2 (default) delta-encodes addresses
// per core for a several-fold smaller file; v1 writes the fixed
// 16-byte records of earlier versions. cmd/cachesim auto-detects both.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cmpmem/internal/core"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
	"cmpmem/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	name := fs.String("workload", "FIMI", "workload name (see cosim table1)")
	threads := fs.Int("threads", 8, "virtual cores")
	scale := fs.Float64("scale", workloads.DefaultScale, "footprint scale")
	seed := fs.Int64("seed", 1, "dataset seed")
	out := fs.String("o", "", "output trace file (required)")
	codec := fs.String("codec", "v2", "trace wire format: v2 (compact deltas) or v1 (fixed 16-byte records)")
	manifestPath := fs.String("manifest", "", "append a JSON run manifest for the capture to this file (JSONL)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	var w *trace.Writer
	switch *codec {
	case "v2":
		w, err = trace.NewWriterV2(f)
	case "v1":
		w, err = trace.NewWriter(f)
	default:
		return fmt.Errorf("unknown -codec %q (want v1 or v2)", *codec)
	}
	if err != nil {
		return err
	}

	p := workloads.Params{Seed: *seed, Scale: *scale}
	pc := core.PlatformConfig{Threads: *threads, Seed: *seed}
	var opts []core.RunOption
	var man *telemetry.ManifestWriter
	if *manifestPath != "" {
		man, err = telemetry.OpenManifestFile(*manifestPath)
		if err != nil {
			return err
		}
		defer man.Close()
		opts = append(opts, core.WithTelemetry(telemetry.NewSink(telemetry.Enable(), man, nil)))
	}
	start := time.Now()
	var writeErr error
	sum, err := core.TraceCapture(*name, p, pc, func(r trace.Ref) {
		if writeErr == nil {
			writeErr = w.Write(r)
		}
	}, opts...)
	if err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := man.Emit(&telemetry.Manifest{
		Kind:       "capture",
		Workload:   sum.Workload,
		Threads:    sum.Threads,
		Seed:       *seed,
		Scale:      *scale,
		DurationNS: uint64(time.Since(start).Nanoseconds()),
		Summary: &telemetry.RunTotals{
			Instructions: sum.Instructions,
			Loads:        sum.Loads,
			Stores:       sum.Stores,
			BusEvents:    sum.BusEvents,
		},
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %s on %d cores: %d instructions, %d references -> %s\n",
		sum.Workload, sum.Threads, sum.Instructions, w.Count(), *out)
	return nil
}
