package main

import (
	"os"
	"path/filepath"
	"testing"

	"cmpmem/internal/trace"
)

func TestTracegenEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace")
	err := run([]string{"-workload", "PLSA", "-threads", "2", "-scale", "0.002", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatalf("trace file has no readable records: %v", err)
	}
}

func TestTracegenErrors(t *testing.T) {
	if err := run([]string{"-workload", "PLSA"}); err == nil {
		t.Error("missing -o accepted")
	}
	out := filepath.Join(t.TempDir(), "x.trace")
	if err := run([]string{"-workload", "NOPE", "-o", out}); err == nil {
		t.Error("unknown workload accepted")
	}
}
