package main

import (
	"os"
	"path/filepath"
	"testing"

	"cmpmem/internal/trace"
)

func TestTracegenEndToEnd(t *testing.T) {
	// Both codecs must produce the identical record sequence; v2 must
	// produce a substantially smaller file.
	dir := t.TempDir()
	outs := map[string]string{
		"v1": filepath.Join(dir, "t1.trace"),
		"v2": filepath.Join(dir, "t2.trace"),
	}
	refs := map[string][]trace.Ref{}
	for codec, out := range outs {
		err := run([]string{"-workload", "PLSA", "-threads", "2", "-scale", "0.002",
			"-codec", codec, "-o", out})
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.ReadAll(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if len(got) == 0 {
			t.Fatalf("%s trace file has no records", codec)
		}
		refs[codec] = got
	}
	if len(refs["v1"]) != len(refs["v2"]) {
		t.Fatalf("codecs disagree on record count: %d vs %d", len(refs["v1"]), len(refs["v2"]))
	}
	for i := range refs["v1"] {
		if refs["v1"][i] != refs["v2"][i] {
			t.Fatalf("record %d diverges between codecs: %+v vs %+v", i, refs["v1"][i], refs["v2"][i])
		}
	}
	s1, _ := os.Stat(outs["v1"])
	s2, _ := os.Stat(outs["v2"])
	if s2.Size()*2 >= s1.Size() {
		t.Errorf("v2 file not at least 2x smaller: v1=%dB v2=%dB", s1.Size(), s2.Size())
	}
}

func TestTracegenErrors(t *testing.T) {
	if err := run([]string{"-workload", "PLSA"}); err == nil {
		t.Error("missing -o accepted")
	}
	out := filepath.Join(t.TempDir(), "x.trace")
	if err := run([]string{"-workload", "NOPE", "-o", out}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-workload", "PLSA", "-codec", "v9", "-o", out}); err == nil {
		t.Error("unknown codec accepted")
	}
}
