// Command cosimload hammers a cosimd server with concurrent tenants
// over an overlapping spec mix and reports what the shared state bought:
// request latencies, completion latencies, and the dedupe ratio
// (completed sweeps per actual trace execution — the measure of the
// execute-once/replay-many promise holding across tenants).
//
// The mix is built so that many distinct experiments (different
// geometry grids) share few workload captures (same workload/seed/
// platform): every request is a distinct cache-keyed result, but the
// expensive trace executions collapse to one per seed.
//
// Flags:
//
//	-addr       server base URL (default http://127.0.0.1:8344)
//	-tenants n  concurrent tenants (default 8)
//	-requests n requests per tenant (default 8)
//	-workload   workload name for the mix (default FIMI)
//	-scale f    footprint scale (default 1/32 to keep smokes fast)
//	-seeds n    distinct dataset seeds in the mix (default 2)
//	-mix n      distinct grid variants per seed (default 4)
//	-timeout d  per-job completion timeout (default 120s)
//	-verify     recompute one served result locally and compare bytes
//	-out path   write the benchmark JSON here (default BENCH_server.json)
//
// A request rejected with 429 honors Retry-After and retries; a job
// that fails or times out counts as a failure and fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"cmpmem/internal/server"
	"cmpmem/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cosimload:", err)
		os.Exit(1)
	}
}

// bench is the BENCH_server.json schema.
type bench struct {
	GitRev     string  `json:"git_rev"`
	Tenants    int     `json:"tenants"`
	PerTenant  int     `json:"requests_per_tenant"`
	Requests   int     `json:"requests"`
	Completed  int     `json:"completed"`
	Cached     int     `json:"cached"`
	Failed     int     `json:"failed"`
	Retries429 int     `json:"retries_429"`
	Distinct   int     `json:"distinct_specs"`
	WallSec    float64 `json:"wall_seconds"`

	TraceExecutions  uint64  `json:"trace_executions"`
	SingleFlightHits uint64  `json:"singleflight_waits"`
	DedupeRatio      float64 `json:"dedupe_ratio"` // completed / trace executions
	ResultCacheHits  uint64  `json:"result_cache_hits"`

	SubmitMicros   percentiles `json:"submit_micros"`
	CompleteMillis percentiles `json:"complete_millis"`

	Verified      bool `json:"verified,omitempty"`
	VerifyMatched bool `json:"verify_matched,omitempty"`
}

type percentiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("cosimload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8344", "cosimd base URL")
	tenants := fs.Int("tenants", 8, "concurrent tenants")
	requests := fs.Int("requests", 8, "requests per tenant")
	workload := fs.String("workload", "FIMI", "workload name for the spec mix")
	scale := fs.Float64("scale", 1.0/32, "footprint scale")
	seeds := fs.Int("seeds", 2, "distinct dataset seeds in the mix")
	mix := fs.Int("mix", 4, "distinct grid variants per seed")
	timeout := fs.Duration("timeout", 120*time.Second, "per-job completion timeout")
	verify := fs.Bool("verify", false, "recompute one served result locally and compare bytes")
	out := fs.String("out", "BENCH_server.json", "benchmark JSON output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := buildMix(*workload, *scale, *seeds, *mix)
	fmt.Fprintf(os.Stderr, "cosimload: %d tenants x %d requests over %d distinct specs at %s\n",
		*tenants, *requests, len(specs), *addr)

	var (
		mu         sync.Mutex
		submits    []time.Duration
		completes  []time.Duration
		completed  int
		cached     int
		failed     int
		retries429 int
		firstBody  []byte // one served result, for -verify
		firstSpec  *server.SweepSpec
		errs       []error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < *tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			tenant := fmt.Sprintf("tenant-%d", t)
			for i := 0; i < *requests; i++ {
				spec := specs[(t*(*requests)+i)%len(specs)]
				res, err := oneRequest(client, *addr, tenant, spec, *timeout)
				mu.Lock()
				retries429 += res.retries
				if err != nil {
					failed++
					errs = append(errs, fmt.Errorf("%s req %d: %w", tenant, i, err))
				} else {
					completed++
					if res.cached {
						cached++
					}
					submits = append(submits, res.submit)
					completes = append(completes, res.complete)
					if firstBody == nil && len(res.result) > 0 {
						firstBody = res.result
						firstSpec = spec
					}
				}
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	wall := time.Since(start)

	st, err := fetchStatusz(*addr)
	if err != nil {
		return fmt.Errorf("statusz: %w", err)
	}
	b := bench{
		GitRev:           telemetry.GitRev(),
		Tenants:          *tenants,
		PerTenant:        *requests,
		Requests:         *tenants * *requests,
		Completed:        completed,
		Cached:           cached,
		Failed:           failed,
		Retries429:       retries429,
		Distinct:         len(specs),
		WallSec:          wall.Seconds(),
		TraceExecutions:  st.TraceStore.Misses,
		SingleFlightHits: st.TraceStore.Waits,
		ResultCacheHits:  st.ResultCache.Hits,
		SubmitMicros:     pctl(submits, time.Microsecond),
		CompleteMillis:   pctl(completes, time.Millisecond),
	}
	if b.TraceExecutions > 0 {
		b.DedupeRatio = float64(completed) / float64(b.TraceExecutions)
	}
	if *verify && firstBody != nil {
		b.Verified = true
		local, err := recompute(firstSpec)
		if err != nil {
			return fmt.Errorf("verify recompute: %w", err)
		}
		b.VerifyMatched = bytes.Equal(local, firstBody)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"cosimload: %d/%d completed (%d cached) in %.1fs, %d trace executions, dedupe %.1fx -> %s\n",
		completed, b.Requests, cached, b.WallSec, b.TraceExecutions, b.DedupeRatio, *out)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "cosimload: FAIL:", e)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed", failed, b.Requests)
	}
	if b.Verified && !b.VerifyMatched {
		return fmt.Errorf("served result does not bit-match local recompute")
	}
	return nil
}

// buildMix constructs seeds x mix distinct specs that all share one
// platform shape per seed, so trace captures collapse per seed while
// every spec is a distinct content-addressed result.
func buildMix(workload string, scale float64, seeds, mix int) []*server.SweepSpec {
	sizes := []uint64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	var specs []*server.SweepSpec
	for s := 0; s < seeds; s++ {
		for v := 0; v < mix; v++ {
			grid := []server.ConfigSpec{
				{SizeBytes: sizes[v%len(sizes)], LineSize: 64, Assoc: 8},
				{SizeBytes: sizes[(v+1)%len(sizes)], LineSize: 64, Assoc: 8},
			}
			spec := &server.SweepSpec{
				Workload: workload,
				Seed:     int64(s + 1),
				Scale:    scale,
				Platform: server.PlatformSpec{Threads: 8},
				Grids:    [][]server.ConfigSpec{grid},
			}
			spec.Normalize()
			specs = append(specs, spec)
		}
	}
	return specs
}

type reqResult struct {
	submit   time.Duration // POST round trip
	complete time.Duration // POST start to terminal state
	retries  int
	cached   bool
	result   []byte
}

// oneRequest submits a spec (retrying 429s per Retry-After) and polls
// the job to completion.
func oneRequest(client *http.Client, base, tenant string, spec *server.SweepSpec, timeout time.Duration) (reqResult, error) {
	var res reqResult
	body, err := json.Marshal(spec)
	if err != nil {
		return res, err
	}
	start := time.Now()
	deadline := start.Add(timeout)
	var status server.JobStatus
	for {
		req, err := http.NewRequest("POST", base+"/v1/sweeps", bytes.NewReader(body))
		if err != nil {
			return res, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := client.Do(req)
		if err != nil {
			return res, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := 1 * time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				retry = time.Duration(ra) * time.Second
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			res.retries++
			if time.Now().Add(retry).After(deadline) {
				return res, fmt.Errorf("still admission-limited at deadline after %d retries", res.retries)
			}
			time.Sleep(retry)
			continue
		}
		err = decodeInto(resp, http.StatusCreated, &status)
		if err != nil {
			return res, err
		}
		break
	}
	res.submit = time.Since(start)

	for status.State != server.StateDone && status.State != server.StateFailed {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("job %s still %s at deadline", status.ID, status.State)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := client.Get(base + "/v1/sweeps/" + status.ID)
		if err != nil {
			return res, err
		}
		if err := decodeInto(resp, http.StatusOK, &status); err != nil {
			return res, err
		}
	}
	res.complete = time.Since(start)
	res.cached = status.Cached
	res.result = status.Result
	if status.State == server.StateFailed {
		return res, fmt.Errorf("job %s failed: %s", status.ID, status.Error)
	}
	return res, nil
}

// pctl summarizes durations in the given unit.
func pctl(ds []time.Duration, unit time.Duration) percentiles {
	if len(ds) == 0 {
		return percentiles{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(unit)
	}
	return percentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: float64(sorted[len(sorted)-1]) / float64(unit),
	}
}

// decodeInto checks the status code and decodes the JSON body.
func decodeInto(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// fetchStatusz reads the server's shared-state snapshot.
func fetchStatusz(base string) (server.Statusz, error) {
	var st server.Statusz
	resp, err := http.Get(base + "/v1/statusz")
	if err != nil {
		return st, err
	}
	return st, decodeInto(resp, http.StatusOK, &st)
}

// recompute runs the spec locally through the same ExecuteSpec path the
// server uses and returns the marshaled result for byte comparison.
func recompute(spec *server.SweepSpec) ([]byte, error) {
	res, err := server.ExecuteSpec(spec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}
