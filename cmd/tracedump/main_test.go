package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleManifests is a three-line JSONL stream: two request manifests
// (one per job) and one record without a trace (tracing disabled).
const sampleManifests = `{"kind":"request","job":"j-1","tenant":"alice","trace_id":"aaaa","trace":{"name":"request","wall_ns":2000000,"children":[{"name":"queue_wait","wall_ns":500000},{"name":"plansweep/SNP","wall_ns":1400000,"children":[{"name":"store","wall_ns":1300000,"attrs":{"outcome":"miss"},"children":[{"name":"capture","wall_ns":1250000}]}]}]}}
{"kind":"request","job":"j-2","tenant":"bob","trace_id":"bbbb","trace":{"name":"request","wall_ns":900000,"children":[{"name":"cache_lookup","wall_ns":1000,"attrs":{"hit":"true"}}]}}
{"kind":"llcsweep","seed":1,"duration_ns":5}
`

func writeSample(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "manifest.jsonl")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWaterfallOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{writeSample(t, sampleManifests)}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# job=j-1 tenant=alice trace=aaaa kind=request",
		"# job=j-2 tenant=bob trace=bbbb kind=request",
		"queue_wait",
		"└─ capture",
		"{outcome=miss}",
		"2.00ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
}

func TestFoldedOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fold", writeSample(t, sampleManifests)}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"request;queue_wait 500000\n",
		"request;plansweep/SNP;store;capture 1250000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#") {
		t.Error("folded output must carry no headers (flamegraph input)")
	}
}

func TestJobAndKindFilters(t *testing.T) {
	p := writeSample(t, sampleManifests)
	var sb strings.Builder
	if err := run([]string{"-job", "j-2", p}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "j-1") || !strings.Contains(sb.String(), "j-2") {
		t.Errorf("job filter failed:\n%s", sb.String())
	}
	var sb2 strings.Builder
	if err := run([]string{"-kind", "request", "-last", p}, &sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "j-1") || !strings.Contains(sb2.String(), "j-2") {
		t.Errorf("-kind -last must keep only the final request:\n%s", sb2.String())
	}
	var sb3 strings.Builder
	if err := run([]string{"-job", "no-such", p}, &sb3); err == nil {
		t.Error("a filter matching nothing must error")
	}
}

func TestBareSpanAndJobStatusShapes(t *testing.T) {
	// A job-status body (id + trace) and a bare span tree.
	body := `{"id":"j-9","tenant":"carol","state":"done","trace_id":"cccc","trace":{"name":"request","wall_ns":100}}
{"name":"plansweep/KM","wall_ns":77,"children":[{"name":"store","wall_ns":70}]}
`
	var sb strings.Builder
	if err := run([]string{writeSample(t, body)}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# job=j-9 tenant=carol trace=cccc") {
		t.Errorf("job-status shape not recognized:\n%s", out)
	}
	if !strings.Contains(out, "plansweep/KM") || !strings.Contains(out, "└─ store") {
		t.Errorf("bare span shape not rendered:\n%s", out)
	}
}

func TestNoTracesIsAnError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{writeSample(t, `{"kind":"llcsweep","seed":1,"duration_ns":5}`)}, &sb); err == nil {
		t.Error("trace-free input must error, not print nothing")
	}
}
