// Command tracedump renders span trees captured by cosim/cosimd as a
// human-readable waterfall or as folded stacks consumable by standard
// flamegraph tooling (flamegraph.pl, speedscope, inferno).
//
// Input is JSONL or a single JSON object, read from a file argument or
// stdin. Three shapes are understood, auto-detected per line:
//
//   - run manifests (telemetry.Manifest: {"kind": ..., "trace": {...}})
//   - job status bodies from GET /v1/sweeps/{id} ({"id": ..., "trace": ...})
//   - bare span trees ({"name": ..., "wall_ns": ...})
//
// Usage:
//
//	tracedump [-fold] [-job id] [-kind k] [-last] [file]
//
//	-fold   emit folded stacks (semicolon-joined path + self wall ns)
//	        instead of the default waterfall
//	-job    only render records whose job id matches
//	-kind   only render manifests of this kind (e.g. "request")
//	-last   render only the last matching record
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cmpmem/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracedump", flag.ContinueOnError)
	fold := fs.Bool("fold", false, "emit folded stacks instead of a waterfall")
	job := fs.String("job", "", "only render records for this job id")
	kind := fs.String("kind", "", "only render manifests of this kind")
	last := fs.Bool("last", false, "render only the last matching record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := io.Reader(os.Stdin)
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	recs, err := decodeRecords(in, *job, *kind)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no matching trace records")
	}
	if *last {
		recs = recs[len(recs)-1:]
	}
	for i, r := range recs {
		if *fold {
			if err := telemetry.WriteFolded(out, r.span); err != nil {
				return err
			}
			continue
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		if r.header != "" {
			fmt.Fprintln(out, r.header)
		}
		if err := telemetry.WriteWaterfall(out, r.span); err != nil {
			return err
		}
	}
	return nil
}

// record is one renderable trace with its provenance line.
type record struct {
	header string
	span   *telemetry.Span
}

// rawRecord is the union of the three understood input shapes.
type rawRecord struct {
	// manifest / job-status fields
	Kind    string          `json:"kind"`
	Job     string          `json:"job"`
	ID      string          `json:"id"`
	Tenant  string          `json:"tenant"`
	TraceID string          `json:"trace_id"`
	Trace   *telemetry.Span `json:"trace"`
	// bare-span fields
	Name   string `json:"name"`
	WallNS uint64 `json:"wall_ns"`
}

// decodeRecords parses every JSON value in r (JSONL or one object),
// keeping those that carry a span tree and pass the filters.
func decodeRecords(r io.Reader, jobFilter, kindFilter string) ([]record, error) {
	var out []record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var raw rawRecord
		if err := json.Unmarshal(text, &raw); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		sp := raw.Trace
		if sp == nil && raw.Name != "" {
			sp = &telemetry.Span{}
			if err := json.Unmarshal(text, sp); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
		}
		if sp == nil {
			continue // a record without a trace (e.g. tracing was off)
		}
		jobID := raw.Job
		if jobID == "" {
			jobID = raw.ID
		}
		if jobFilter != "" && jobID != jobFilter {
			continue
		}
		if kindFilter != "" && raw.Kind != kindFilter {
			continue
		}
		hdr := ""
		if jobID != "" || raw.TraceID != "" {
			hdr = fmt.Sprintf("# job=%s tenant=%s trace=%s kind=%s", jobID, raw.Tenant, raw.TraceID, raw.Kind)
		}
		out = append(out, record{header: hdr, span: sp})
	}
	return out, sc.Err()
}
