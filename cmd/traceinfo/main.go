// Command traceinfo profiles a captured trace: access mix, footprint,
// stride distribution, a windowed working-set timeline — the view of
// "changing application phase behavior" that motivated the paper's
// run-to-completion methodology — and, with -stackdist, a Mattson
// reuse-distance summary from the analytic oracle engine.
//
//	tracegen -workload SHOT -threads 8 -o shot.trace
//	traceinfo -windows 16 -stackdist shot.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cmpmem/internal/fsb"
	"cmpmem/internal/oracle"
	"cmpmem/internal/trace"
	"cmpmem/internal/traceutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	windows := fs.Int("windows", 0, "also print a phase timeline with this many windows")
	stackdist := fs.Bool("stackdist", false, "also print a stack-distance (LRU reuse) summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceinfo [flags] <trace file>")
	}
	path := fs.Arg(0)

	s, err := collectFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("references:   %d (%.1f%% loads, %.1f%% stores)\n",
		s.Refs, pct(s.Loads, s.Refs), pct(s.Stores, s.Refs))
	fmt.Printf("footprint:    %.2f MB (64B lines)\n", float64(s.FootprintBytes)/(1<<20))
	fmt.Printf("sequential:   %.1f%% of same-core transitions within one line\n", 100*s.SeqFraction)
	fmt.Printf("dom. stride:  %d bytes\n", s.DominantStride())

	cores := make([]int, 0, len(s.PerCore))
	for c := range s.PerCore {
		cores = append(cores, int(c))
	}
	sort.Ints(cores)
	fmt.Printf("cores:        %d active\n", len(cores))
	for _, c := range cores {
		fmt.Printf("  core %-3d %12d refs\n", c, s.PerCore[uint8(c)])
	}

	fmt.Println("stride histogram (power-of-two buckets):")
	var maxCount uint64
	for _, c := range s.StrideHist {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range s.StrideHist {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(40*c/maxCount))
		fmt.Printf("  >=%8d B %12d %s\n", 1<<i, c, bar)
	}

	if *windows > 0 {
		if err := printWindows(path, *windows); err != nil {
			return err
		}
	}
	if *stackdist {
		if err := printStackdist(path); err != nil {
			return err
		}
	}
	return nil
}

// stackdistDepth is the exact-histogram depth in 64 B lines: reuse
// distances up to 1M lines (64 MB) are resolved exactly; deeper ones
// report as beyond-depth.
const stackdistDepth = 1 << 20

// printStackdist replays the trace through the analytic oracle engine
// as a single fully-associative set and prints the merged reuse-distance
// summary: the per-workload "how much cache is enough" view that one
// Mattson pass answers for every capacity at once.
func printStackdist(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	eng, err := oracle.New(64)
	if err != nil {
		return err
	}
	if err := eng.AddGeometry(1, stackdistDepth); err != nil {
		return err
	}
	// Stored traces hold only in-window references (the capture snooper
	// already applied the AF gate), so open the window up front.
	eng.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	for {
		ref, err := r.Read()
		if err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		eng.OnRef(ref)
	}
	s, err := eng.Summary(1)
	if err != nil {
		return err
	}
	fmt.Println("stack distance (fully-associative LRU, 64B lines):")
	fmt.Printf("  line requests:  %d\n", s.Requests)
	fmt.Printf("  distinct lines: %d (%.2f MB)\n", s.Distinct, float64(s.Distinct*64)/(1<<20))
	fmt.Printf("  cold misses:    %d (%.1f%% of requests)\n", s.Cold, pct(s.Cold, s.Requests))
	fmt.Printf("  reuse accesses: %d\n", s.Reuse())
	for _, p := range []struct {
		label string
		dist  int
	}{{"p50", s.P50}, {"p90", s.P90}, {"p99", s.P99}} {
		if p.dist < 0 {
			fmt.Printf("  %s reuse dist: beyond %d lines (> %.0f MB)\n",
				p.label, s.Depth, float64(uint64(s.Depth)*64)/(1<<20))
			continue
		}
		fmt.Printf("  %s reuse dist: %d lines (%.3f MB of LRU stack)\n",
			p.label, p.dist, float64(uint64(p.dist)*64)/(1<<20))
	}
	return nil
}

func collectFile(path string) (traceutil.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return traceutil.Stats{}, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return traceutil.Stats{}, err
	}
	return traceutil.Collect(r)
}

func printWindows(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	// First need total refs to size windows; cheap second pass instead:
	// use the stats pass result via a re-read.
	s, err := collectFile(path)
	if err != nil {
		return err
	}
	per := s.Refs / uint64(n)
	if per == 0 {
		per = 1
	}
	ws, err := traceutil.Windows(r, per)
	if err != nil {
		return err
	}
	fmt.Printf("phase timeline (%d windows of ~%d refs):\n", len(ws), per)
	var maxFp uint64
	for _, w := range ws {
		if w.DistinctBytes > maxFp {
			maxFp = w.DistinctBytes
		}
	}
	for i, w := range ws {
		bar := ""
		if maxFp > 0 {
			bar = strings.Repeat("#", int(40*w.DistinctBytes/maxFp))
		}
		fmt.Printf("  w%-3d %8.2f MB touched, %4.1f%% stores %s\n",
			i, float64(w.DistinctBytes)/(1<<20), 100*w.StoreFraction, bar)
	}
	return nil
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
