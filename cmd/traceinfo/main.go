// Command traceinfo profiles a captured trace: access mix, footprint,
// stride distribution, and a windowed working-set timeline — the view
// of "changing application phase behavior" that motivated the paper's
// run-to-completion methodology.
//
//	tracegen -workload SHOT -threads 8 -o shot.trace
//	traceinfo -windows 16 shot.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cmpmem/internal/trace"
	"cmpmem/internal/traceutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	windows := fs.Int("windows", 0, "also print a phase timeline with this many windows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceinfo [flags] <trace file>")
	}
	path := fs.Arg(0)

	s, err := collectFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("references:   %d (%.1f%% loads, %.1f%% stores)\n",
		s.Refs, pct(s.Loads, s.Refs), pct(s.Stores, s.Refs))
	fmt.Printf("footprint:    %.2f MB (64B lines)\n", float64(s.FootprintBytes)/(1<<20))
	fmt.Printf("sequential:   %.1f%% of same-core transitions within one line\n", 100*s.SeqFraction)
	fmt.Printf("dom. stride:  %d bytes\n", s.DominantStride())

	cores := make([]int, 0, len(s.PerCore))
	for c := range s.PerCore {
		cores = append(cores, int(c))
	}
	sort.Ints(cores)
	fmt.Printf("cores:        %d active\n", len(cores))
	for _, c := range cores {
		fmt.Printf("  core %-3d %12d refs\n", c, s.PerCore[uint8(c)])
	}

	fmt.Println("stride histogram (power-of-two buckets):")
	var maxCount uint64
	for _, c := range s.StrideHist {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range s.StrideHist {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(40*c/maxCount))
		fmt.Printf("  >=%8d B %12d %s\n", 1<<i, c, bar)
	}

	if *windows > 0 {
		if err := printWindows(path, *windows); err != nil {
			return err
		}
	}
	return nil
}

func collectFile(path string) (traceutil.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return traceutil.Stats{}, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return traceutil.Stats{}, err
	}
	return traceutil.Collect(r)
}

func printWindows(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	// First need total refs to size windows; cheap second pass instead:
	// use the stats pass result via a re-read.
	s, err := collectFile(path)
	if err != nil {
		return err
	}
	per := s.Refs / uint64(n)
	if per == 0 {
		per = 1
	}
	ws, err := traceutil.Windows(r, per)
	if err != nil {
		return err
	}
	fmt.Printf("phase timeline (%d windows of ~%d refs):\n", len(ws), per)
	var maxFp uint64
	for _, w := range ws {
		if w.DistinctBytes > maxFp {
			maxFp = w.DistinctBytes
		}
	}
	for i, w := range ws {
		bar := ""
		if maxFp > 0 {
			bar = strings.Repeat("#", int(40*w.DistinctBytes/maxFp))
		}
		fmt.Printf("  w%-3d %8.2f MB touched, %4.1f%% stores %s\n",
			i, float64(w.DistinctBytes)/(1<<20), 100*w.StoreFraction, bar)
	}
	return nil
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
