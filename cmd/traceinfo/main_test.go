package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		kind := mem.Load
		if i%3 == 0 {
			kind = mem.Store
		}
		if err := w.Write(trace.Ref{Addr: mem.Addr(i * 128), Core: uint8(i % 2), Size: 8, Kind: kind}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceinfoEndToEnd(t *testing.T) {
	path := writeTestTrace(t)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-windows", "4", "-stackdist", path}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceinfoStackdist pins the -stackdist numbers on a hand-checked
// trace: lines A B A B -> 2 cold misses and two reuses of distance 1,
// so every percentile is 1 line.
func TestTraceinfoStackdist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []mem.Addr{0, 64, 0, 64} {
		if err := w.Write(trace.Ref{Addr: addr, Size: 8, Kind: mem.Load}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := captureStdout(t, func() {
		if err := printStackdist(path); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{
		"line requests:  4",
		"distinct lines: 2",
		"cold misses:    2 (50.0% of requests)",
		"reuse accesses: 2",
		"p50 reuse dist: 1 lines",
		"p90 reuse dist: 1 lines",
		"p99 reuse dist: 1 lines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTraceinfoErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"/does/not/exist"}); err == nil {
		t.Error("missing trace accepted")
	}
}
