package main

import (
	"os"
	"path/filepath"
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		kind := mem.Load
		if i%3 == 0 {
			kind = mem.Store
		}
		if err := w.Write(trace.Ref{Addr: mem.Addr(i * 128), Core: uint8(i % 2), Size: 8, Kind: kind}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceinfoEndToEnd(t *testing.T) {
	path := writeTestTrace(t)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-windows", "4", path}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceinfoErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"/does/not/exist"}); err == nil {
		t.Error("missing trace accepted")
	}
}
