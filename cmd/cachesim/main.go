// Command cachesim replays a captured trace through one or more cache
// configurations — an offline Dragonhead:
//
//	cachesim -size 4MB,16MB,64MB -line 64 -assoc 16 fimi8.trace
//
// It also reports the single-pass stack-distance working set when
// -workingset is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cmpmem/internal/cache"
	"cmpmem/internal/stackdist"
	"cmpmem/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	sizes := fs.String("size", "4MB", "comma-separated cache sizes (e.g. 512KB,4MB)")
	line := fs.Uint64("line", 64, "line size in bytes")
	sector := fs.Uint64("sector", 0, "sector size in bytes (0 = unsectored lines)")
	assoc := fs.Int("assoc", 16, "associativity (0 = fully associative)")
	ws := fs.Bool("workingset", false, "also report the stack-distance working set")
	wsThreshold := fs.Float64("ws-threshold", 0.02, "miss-ratio threshold defining the working set")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cachesim [flags] <trace file>")
	}

	var caches []*cache.Cache
	for _, s := range strings.Split(*sizes, ",") {
		bytes, err := parseSize(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		c, err := cache.New(cache.Config{
			Name: s, Size: bytes, LineSize: *line, Assoc: *assoc, SectorSize: *sector,
		})
		if err != nil {
			return err
		}
		caches = append(caches, c)
	}
	var an *stackdist.Analyzer
	if *ws {
		an = stackdist.New(*line, 1<<22)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}

	var refs uint64
	for {
		ref, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		refs++
		for _, c := range caches {
			c.AccessRef(ref)
		}
		if an != nil {
			an.Record(ref.Addr)
		}
	}

	fmt.Printf("%d references\n", refs)
	fmt.Printf("%-10s %12s %12s %10s %12s %12s\n",
		"cache", "accesses", "misses", "missrate", "writebacks", "traffic(MB)")
	for _, c := range caches {
		s := c.Stats()
		fmt.Printf("%-10s %12d %12d %9.2f%% %12d %12.2f\n",
			c.Config().Name, s.Accesses, s.Misses, 100*s.MissRate(), s.Writebacks,
			float64(s.TrafficBytes)/(1<<20))
	}
	if an != nil {
		lines := an.WorkingSetLines(*wsThreshold)
		if lines < 0 {
			fmt.Printf("working set: beyond measured depth (%d distinct lines)\n", an.DistinctLines())
		} else {
			fmt.Printf("working set: %d lines (%.2f MB) at %.1f%% miss ratio\n",
				lines, float64(lines)*float64(*line)/(1<<20), 100**wsThreshold)
		}
	}
	return nil
}

// parseSize parses "512KB" / "4MB" / "131072".
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "KB"):
		mult, upper = 1<<10, upper[:len(upper)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, upper = 1<<20, upper[:len(upper)-2]
	case strings.HasSuffix(upper, "GB"):
		mult, upper = 1<<30, upper[:len(upper)-2]
	}
	n, err := strconv.ParseUint(upper, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}
