package main

import (
	"os"
	"path/filepath"
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := w.Write(trace.Ref{Addr: mem.Addr(i * 64), Size: 8, Kind: mem.Load}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCachesimEndToEnd(t *testing.T) {
	path := writeTestTrace(t)
	if err := run([]string{"-size", "16KB,64KB", "-workingset", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-size", "64KB", "-line", "256", "-sector", "64", path}); err != nil {
		t.Fatal(err)
	}
}

func TestCachesimErrors(t *testing.T) {
	if err := run([]string{"-size", "banana", writeTestTrace(t)}); err == nil {
		t.Error("bad size accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"/does/not/exist.trace"}); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]uint64{
		"64":    64,
		"4KB":   4 << 10,
		"2MB":   2 << 20,
		"1GB":   1 << 30,
		"512kb": 512 << 10,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := parseSize("xMB"); err == nil {
		t.Error("garbage size accepted")
	}
}
