package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const histBase = `{
  "benchmark": "BenchmarkLLCSweep",
  "history": [
    {"pr": 2, "serial_ns_per_op": 999},
    {"pr": 7,
     "serial_ns_per_op": 1000000,
     "parallel_ns_per_op": 250000,
     "speedup_parallel_over_serial": 4.0,
     "cache_access_mrefs_per_s": 150.0,
     "misses_serial": 12345,
     "sharded_run_mrefs_per_s": {"shards_2": 300.0}}
  ]
}`

func TestJSONModeFoldsHistoryLastWins(t *testing.T) {
	old := writeFile(t, "old.json", histBase)
	// 10% slower serial, slightly better throughput: inside a 25% threshold.
	fresh := writeFile(t, "new.json", `{
  "history": [
    {"pr": 9,
     "serial_ns_per_op": 1100000,
     "parallel_ns_per_op": 260000,
     "speedup_parallel_over_serial": 4.2,
     "cache_access_mrefs_per_s": 155.0,
     "misses_serial": 12345,
     "sharded_run_mrefs_per_s": {"shards_2": 310.0}}
  ]
}`)
	var sb strings.Builder
	code, err := run([]string{old, fresh}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"serial_ns_per_op", "sharded_run_mrefs_per_s.shards_2", "no regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The newest recording (1000000) must be the baseline, not the
	// superseded 999 from the older entry.
	if strings.Contains(out, "\t999\t") || strings.Contains(out, " 999 ") {
		t.Errorf("compared against a superseded history value:\n%s", out)
	}
}

func TestJSONModeFlagsRegression(t *testing.T) {
	old := writeFile(t, "old.json", histBase)
	fresh := writeFile(t, "new.json", `{
  "history": [
    {"serial_ns_per_op": 2000000,
     "parallel_ns_per_op": 250000,
     "cache_access_mrefs_per_s": 150.0}
  ]
}`)
	var sb strings.Builder
	code, err := run([]string{"-threshold", "0.25", old, fresh}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("expected a REGRESSED verdict:\n%s", sb.String())
	}
}

func TestHigherIsBetterDirection(t *testing.T) {
	old := writeFile(t, "old.json", `{"cache_access_mrefs_per_s": 200.0}`)
	fresh := writeFile(t, "new.json", `{"cache_access_mrefs_per_s": 100.0}`)
	var sb strings.Builder
	code, err := run([]string{old, fresh}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("throughput halving must regress; exit %d:\n%s", code, sb.String())
	}
}

func TestUngatedMetricsAreInfoOnly(t *testing.T) {
	old := writeFile(t, "old.json", `{"misses_serial": 100}`)
	fresh := writeFile(t, "new.json", `{"misses_serial": 900}`)
	var sb strings.Builder
	code, err := run([]string{old, fresh}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("info metric must not gate; exit %d:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "info") {
		t.Errorf("expected an info verdict:\n%s", sb.String())
	}
}

func TestBenchTextMode(t *testing.T) {
	base := writeFile(t, "base.json", histBase)
	bench := writeFile(t, "bench.txt", strings.Join([]string{
		"goos: linux",
		"BenchmarkLLCSweepSerial-8    \t       1\t1100000 ns/op",
		"BenchmarkLLCSweepParallel-8  \t       4\t 260000 ns/op\t12 MB/s",
		"PASS",
	}, "\n"))
	var sb strings.Builder
	code, err := run([]string{"-baseline", base, "-bench", bench}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "serial_ns_per_op") || !strings.Contains(out, "parallel_ns_per_op") {
		t.Errorf("bench names not mapped to baseline keys:\n%s", out)
	}
}

func TestBenchTextModeRegression(t *testing.T) {
	base := writeFile(t, "base.json", histBase)
	bench := writeFile(t, "bench.txt", "BenchmarkLLCSweepSerial-8\t1\t9000000 ns/op\n")
	var sb strings.Builder
	code, err := run([]string{"-threshold", "0.5", "-baseline", base, "-bench", bench}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("9x slowdown must regress; exit %d:\n%s", code, sb.String())
	}
}

func TestNoOverlapIsAnError(t *testing.T) {
	old := writeFile(t, "old.json", `{"a_ns_per_op": 1}`)
	fresh := writeFile(t, "new.json", `{"b_ns_per_op": 1}`)
	var sb strings.Builder
	if code, err := run([]string{old, fresh}, &sb); err == nil || code != 2 {
		t.Fatalf("disjoint inputs must error; code=%d err=%v", code, err)
	}
}

func TestDirectionClassification(t *testing.T) {
	cases := map[string]metricDirection{
		"serial_ns_per_op":                 lowerBetter,
		"complete_millis.p99":              lowerBetter,
		"submit_micros.p50":                lowerBetter,
		"cache_access_mrefs_per_s":         higherBetter,
		"sharded_run_mrefs_per_s.shards_4": higherBetter,
		"speedup_batch_over_scalar":        higherBetter,
		"dedupe_ratio":                     higherBetter,
		"misses_serial":                    ungated,
		"pr":                               ungated,
	}
	for k, want := range cases {
		if got := direction(k); got != want {
			t.Errorf("direction(%q) = %v, want %v", k, got, want)
		}
	}
}
