// Command benchdiff is the perf-regression gate: it compares two
// BENCH_*.json records — or a checked-in baseline against fresh
// `go test -bench` output — and fails past a configurable regression
// threshold, so the repo's performance trajectory is machine-checked
// instead of a hand-read history list.
//
// Modes:
//
//	benchdiff [-threshold f] old.json new.json
//	    Compare the numeric fields the two files share. Files with a
//	    "history" array (BENCH_sweep.json) are folded last-wins-per-key,
//	    so each metric's baseline is its most recent recorded value;
//	    flat files (BENCH_server.json) are compared directly.
//
//	benchdiff [-threshold f] -baseline BENCH_sweep.json -bench out.txt
//	    Parse `go test -bench` text output and compare each benchmark's
//	    ns/op against the matching *_ns_per_op field of the baseline's
//	    last history entry.
//
// Direction is inferred from the metric name: *_ns_per_op, *_millis*,
// *_micros*, *_seconds and *_ns are lower-is-better; *mrefs_per_s,
// *dedupe_ratio and speedup_* are higher-is-better. Everything else is
// reported but never gated. A metric regresses when it is worse than
// the baseline by more than threshold (a fraction: 0.25 allows 25%
// degradation; CI uses a deliberately generous value because runner
// hardware differs from the recorded baselines).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// newTabWriter builds the aligned table writer used for the report.
func newTabWriter(out io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.25, "allowed fractional regression before failing")
	baseline := fs.String("baseline", "", "baseline BENCH_*.json for -bench mode")
	benchTxt := fs.String("bench", "", "go test -bench output file (- reads stdin)")
	match := fs.String("match", "", "only compare metrics containing this substring")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	var base, fresh map[string]float64
	switch {
	case *benchTxt != "":
		if *baseline == "" {
			return 2, fmt.Errorf("-bench requires -baseline")
		}
		var err error
		if base, err = loadJSONMetrics(*baseline); err != nil {
			return 2, err
		}
		if fresh, err = loadBenchText(*benchTxt); err != nil {
			return 2, err
		}
	case fs.NArg() == 2:
		var err error
		if base, err = loadJSONMetrics(fs.Arg(0)); err != nil {
			return 2, err
		}
		if fresh, err = loadJSONMetrics(fs.Arg(1)); err != nil {
			return 2, err
		}
	default:
		return 2, fmt.Errorf("usage: benchdiff [-threshold f] old.json new.json  |  benchdiff -baseline b.json -bench out.txt")
	}

	rows, regressions := diff(base, fresh, *match, *threshold)
	if len(rows) == 0 {
		return 2, fmt.Errorf("no comparable metrics between the two inputs")
	}
	w := newTabWriter(out)
	fmt.Fprintf(w, "metric\tbaseline\tcurrent\tdelta\tverdict\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%+.1f%%\t%s\n", r.key, fmtNum(r.base), fmtNum(r.fresh), r.deltaPct, r.verdict)
	}
	w.Flush()
	if regressions > 0 {
		fmt.Fprintf(out, "\n%d metric(s) regressed beyond the %.0f%% threshold\n", regressions, *threshold*100)
		return 1, nil
	}
	fmt.Fprintf(out, "\nno regressions beyond the %.0f%% threshold\n", *threshold*100)
	return 0, nil
}

// row is one compared metric.
type row struct {
	key         string
	base, fresh float64
	deltaPct    float64
	verdict     string
}

// diff compares the shared keys and counts gated regressions.
func diff(base, fresh map[string]float64, match string, threshold float64) ([]row, int) {
	keys := make([]string, 0, len(base))
	for k := range base {
		if _, ok := fresh[k]; ok && (match == "" || strings.Contains(k, match)) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var rows []row
	regressions := 0
	for _, k := range keys {
		b, f := base[k], fresh[k]
		r := row{key: k, base: b, fresh: f}
		if b != 0 {
			r.deltaPct = (f - b) / b * 100
		}
		switch direction(k) {
		case lowerBetter:
			if f > b*(1+threshold) {
				r.verdict = "REGRESSED"
				regressions++
			} else {
				r.verdict = "ok"
			}
		case higherBetter:
			if f < b/(1+threshold) {
				r.verdict = "REGRESSED"
				regressions++
			} else {
				r.verdict = "ok"
			}
		default:
			r.verdict = "info"
		}
		rows = append(rows, r)
	}
	return rows, regressions
}

type metricDirection int

const (
	ungated metricDirection = iota
	lowerBetter
	higherBetter
)

// direction classifies a metric name.
func direction(key string) metricDirection {
	k := strings.ToLower(key)
	switch {
	case strings.Contains(k, "mrefs_per_s"),
		strings.Contains(k, "dedupe_ratio"),
		strings.HasPrefix(k, "speedup"),
		strings.Contains(k, ".speedup"),
		strings.Contains(k, "_per_s"):
		return higherBetter
	case strings.Contains(k, "_ns_per_op"),
		strings.Contains(k, "_millis"),
		strings.Contains(k, "_micros"),
		strings.Contains(k, "_seconds"),
		strings.HasSuffix(k, "_ns"):
		return lowerBetter
	default:
		return ungated
	}
}

// loadJSONMetrics reads a BENCH_*.json file into flat dot-path numeric
// metrics. A top-level "history" array is folded in order with
// last-wins-per-key semantics: each metric's baseline is its most
// recently recorded value, even when the newest entry did not
// re-measure it.
func loadJSONMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	if h, ok := doc["history"].([]any); ok && len(h) > 0 {
		for _, e := range h {
			if entry, ok := e.(map[string]any); ok {
				flatten("", entry, out)
			}
		}
		return out, nil
	}
	flatten("", doc, out)
	return out, nil
}

// flatten walks nested JSON objects, collecting numeric leaves under
// dot-joined paths.
func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, c, out)
		}
	case float64:
		if prefix != "" {
			out[prefix] = t
		}
	}
}

// benchKeyMap translates `go test -bench` benchmark names into the
// BENCH_sweep.json history vocabulary, so fresh runs and the checked-in
// trajectory speak the same keys.
var benchKeyMap = map[string]string{
	"BenchmarkLLCSweepSerial":        "serial_ns_per_op",
	"BenchmarkLLCSweepParallel":      "parallel_ns_per_op",
	"BenchmarkSweepExecuteEveryTime": "execute_every_time_ns_per_op",
	"BenchmarkReplayThroughput":      "replay_backed_ns_per_op",
	"BenchmarkSweepPlanner":          "planner_ns_per_op",
	"BenchmarkSampledSweep":          "sampled_ns_per_op",
}

// loadBenchText parses `go test -bench` output: lines of the form
// "BenchmarkName-8   3   1846977438 ns/op [...]". Unmapped benchmarks
// keep their bare name with an _ns_per_op suffix, so they still gate
// when both sides carry them.
func loadBenchText(path string) (map[string]float64, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		key, ok := benchKeyMap[name]
		if !ok {
			key = name + "_ns_per_op"
		}
		out[key] = ns
	}
	return out, sc.Err()
}

// fmtNum renders a metric value compactly.
func fmtNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
