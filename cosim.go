// Package cmpmem is a hardware-software co-simulation toolkit for
// studying the memory performance of parallel data-mining workloads on
// small, medium, and large-scale chip multiprocessors, reproducing
// Li et al., "Understanding the Memory Performance of Data-Mining
// Workloads on Small, Medium, and Large-Scale CMPs Using
// Hardware-Software Co-simulation" (ISPASS 2007).
//
// The toolkit couples a software model of Intel's SoftSDV full-system
// simulator in DEX (direct-execution) mode with a software model of the
// Dragonhead FPGA cache emulator over a front-side-bus abstraction, and
// ships real implementations of the paper's eight data-mining workloads
// (SNP, SVM-RFE, RSEARCH, FIMI, PLSA, MDS, SHOT, VIEWTYPE).
//
// Quick start:
//
//	results, _, err := cmpmem.LLCSweep("FIMI", cmpmem.Params{Seed: 1},
//	    cmpmem.SCMP(), cmpmem.CacheSweepConfigs(0))
//
// runs FIMI on the 8-core platform while emulating the whole Figure 4
// cache-size sweep in one execution; each LLCResult reports the misses
// per 1000 instructions of one cache size.
//
// Every exhibit of the paper has a one-call runner: Table1, Table2,
// CacheSweep (Figures 4-6), LineSweep (Figure 7), and Fig8.
package cmpmem

import (
	"cmpmem/internal/cache"
	"cmpmem/internal/core"
	"cmpmem/internal/fsb"
	"cmpmem/internal/hier"
	"cmpmem/internal/metrics"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

// Params controls workload sizing; see workloads.Params.
type Params = workloads.Params

// PlatformConfig describes the virtual CMP; see core.PlatformConfig.
type PlatformConfig = core.PlatformConfig

// CacheConfig describes one cache; see cache.Config.
type CacheConfig = cache.Config

// CacheStats holds cache event counters; see cache.Stats.
type CacheStats = cache.Stats

// LLCResult is one emulated LLC's outcome; see core.LLCResult.
type LLCResult = core.LLCResult

// RunSummary reports execution-side totals; see core.RunSummary.
type RunSummary = core.RunSummary

// HierResult is a timing-hierarchy outcome; see core.HierResult.
type HierResult = core.HierResult

// HierConfig describes the timing machine; see hier.Config.
type HierConfig = hier.Config

// Series is a named sweep curve; see metrics.Series.
type Series = metrics.Series

// Ref is one bus-visible memory reference; see trace.Ref.
type Ref = trace.Ref

// Snooper is a passive front-side-bus observer; see fsb.Snooper. Run
// attaches snoopers to a live execution, ReplayBus to a captured
// stream.
type Snooper = fsb.Snooper

// Message is a bus control message (start/stop/core-id/counters); see
// fsb.Message. Snooper implementations receive these via OnMsg.
type Message = fsb.Message

// Table1Row, Table2Row, and Fig8Row mirror the paper's exhibits;
// ProjectionRow, DRAMCacheRow, and LLCOrgRow belong to the
// beyond-the-paper studies.
type (
	Table1Row     = core.Table1Row
	Table2Row     = core.Table2Row
	Fig8Row       = core.Fig8Row
	ProjectionRow = core.ProjectionRow
	DRAMCacheRow  = core.DRAMCacheRow
	LLCOrgRow     = core.LLCOrgRow
)

// DefaultScale is the harness default footprint scale (1/16 of paper).
const DefaultScale = workloads.DefaultScale

// Platform presets matching the paper's three CMP sizes.
var (
	// SCMP is the 8-core small-scale CMP.
	SCMP = core.SCMP
	// MCMP is the 16-core medium-scale CMP.
	MCMP = core.MCMP
	// LCMP is the 32-core large-scale CMP.
	LCMP = core.LCMP
)

// WorkloadNames returns the eight workload names in Table 1 order.
func WorkloadNames() []string { return registry.Names() }

// RunOption tunes experiment concurrency; see core.RunOption. Options
// change wall-clock only — statistics are bit-identical with or
// without them.
type RunOption = core.RunOption

// WithParallelism bounds how many independent workload runs an exhibit
// runner executes concurrently (default GOMAXPROCS; 1 forces serial).
var WithParallelism = core.WithParallelism

// WithBusBatch enables batched asynchronous bus delivery inside each
// run: every attached emulator drains its own bounded channel on a
// dedicated worker goroutine, so an N-config LLCSweep costs about one
// emulator's wall-clock instead of N.
var WithBusBatch = core.WithBusBatch

// WithBankShards spreads each Dragonhead emulator's bank lookups
// across n worker goroutines inside one run, partitioned by the
// address-interleave bits that select the CC bank. Statistics are
// bit-identical to serial emulation. n == 0 selects auto (one shard
// per CPU, capped at the bank count); n == 1 forces serial.
var WithBankShards = core.WithBankShards

// TraceStore memoizes captured bus-event streams; see tracestore.Store.
type TraceStore = tracestore.Store

// NewTraceStore builds a trace store with the given in-memory byte
// budget (0 = default 1 GiB) and optional spill directory ("" disables
// disk persistence).
var NewTraceStore = tracestore.New

// WithTraceReuse executes each (workload, params, platform, seed) tuple
// at most once and replays the memoized bus-event stream for every
// other experiment on the same tuple (nil selects a process-wide
// store). Results are bit-identical to live execution.
var WithTraceReuse = core.WithTraceReuse

// TraceStoreStats is a point-in-time trace store snapshot: hits, disk
// hits, misses (= actual executions), single-flight waits, evictions,
// and resident bytes. Obtain one with (*TraceStore).StatsSnapshot.
type TraceStoreStats = tracestore.Stats

// Progress is one observation from a run's progress hook; see
// WithProgress and the Phase* constants.
type Progress = core.Progress

// Progress phases reported through WithProgress.
const (
	PhaseCapture = core.PhaseCapture
	PhaseReplay  = core.PhaseReplay
	PhaseExecute = core.PhaseExecute
	PhaseConfig  = core.PhaseConfig
	PhaseSample  = core.PhaseSample
)

// WithProgress registers a hook observing a run's phase transitions
// (capture, replay, live execute) and per-config sweep completions.
// The hook runs synchronously on the run's goroutine; keep it cheap.
var WithProgress = core.WithProgress

// ReplayBus drives any snooper set from a captured bus-event stream in
// captured order, returning the number of events delivered.
var ReplayBus = core.ReplayBus

// Run executes a workload on the platform with optional snoopers; most
// callers want LLCSweep or RunHier instead.
var Run = core.Run

// LLCSweep runs one workload while emulating every LLC configuration.
var LLCSweep = core.LLCSweep

// Engine selects how a sweep executes: EngineEmulate (the default;
// one cache emulator per config), EngineAuto (a sweep planner compiles
// the grid into one analytic stack-distance pass plus an emulation leg
// for configs the profile cannot express), or EngineOracle (strict:
// planning fails if any config needs emulation). Results are
// bit-identical across engines; `cosim -verify` proves it.
type Engine = core.Engine

// Engine values; see core.Engine.
const (
	EngineEmulate = core.EngineEmulate
	EngineAuto    = core.EngineAuto
	EngineOracle  = core.EngineOracle
)

// ParseEngine maps "emulate"|"auto"|"oracle" to an Engine.
var ParseEngine = core.ParseEngine

// WithEngine selects the sweep execution engine for LLCSweep and the
// exhibit runners built on it.
var WithEngine = core.WithEngine

// SamplingMode selects the sweep accuracy tier: SamplingOff (exact,
// the default), SamplingFast (replay only representative trace
// intervals and extrapolate full-trace statistics with confidence
// intervals), or SamplingCustom (explicit sampling parameters via
// WithSamplingParams). Unlike every other run option, sampling CHANGES
// results — each LLCResult carries a SamplingEstimate with its
// miss-count confidence interval, graded against the exact oracle by
// `cosim -verify`.
type SamplingMode = core.SamplingMode

// Sampling modes; see core.SamplingMode.
const (
	SamplingOff  = core.SamplingOff
	SamplingFast = core.SamplingFast
)

// SamplingEstimate records how much of the trace a sampled sweep
// replayed and the miss-count confidence interval; see
// core.SamplingEstimate.
type SamplingEstimate = core.SamplingEstimate

// ParseSampling maps "off"|"fast" to a SamplingMode.
var ParseSampling = core.ParseSampling

// WithSampling selects the accuracy tier for LLCSweep, CombinedSweep,
// and the exhibit runners built on them.
var WithSampling = core.WithSampling

// WithSamplingParams enables sampling with explicit sampling.Params
// (interval length, cluster budget, warmup, seed, CI width knobs).
var WithSamplingParams = core.WithSamplingParams

// CombinedSweep executes several config grids of one workload as a
// single planned sweep: shared geometries are deduplicated across
// grids and every oracle-answerable config is served by one analytic
// pass. It defaults to EngineAuto; results mirror the grids exactly.
var CombinedSweep = core.CombinedSweep

// RunHier runs one workload against the per-core L1/L2 timing model.
var RunHier = core.RunHier

// TraceCapture streams a workload's in-window references to a callback.
var TraceCapture = core.TraceCapture

// CacheSweepConfigs returns the Figure 4-6 LLC sweep at the given scale
// (0 = DefaultScale).
var CacheSweepConfigs = core.CacheSweepConfigs

// LineSweepConfigs returns the Figure 7 line-size sweep.
var LineSweepConfigs = core.LineSweepConfigs

// PentiumIV and Xeon16 are the Table 2 and Figure 8 machine models.
var (
	PentiumIV = hier.PentiumIV
	Xeon16    = hier.Xeon16
)

// Exhibit runners.
var (
	// Table1 lists input parameters and dataset sizes.
	Table1 = core.Table1
	// Table2 profiles the workloads single-threaded (IPC, mix, MPKI).
	Table2 = core.Table2
	// CacheSweep produces Figures 4-6 (pass cores = 8, 16, 32).
	CacheSweep = core.CacheSweep
	// LineSweep produces Figure 7.
	LineSweep = core.LineSweep
	// Fig8 measures hardware-prefetching gains, serial and 16-thread.
	Fig8 = core.Fig8
)

// Beyond-the-paper studies (see `cosim proj128|dramcache|llcorg|phases`).
var (
	// Projection128 measures Section 4.3's 128-core working sets
	// directly instead of extrapolating them.
	Projection128 = core.Projection128
	// DRAMCacheStudy quantifies the conclusions' DRAM-LLC proposal.
	DRAMCacheStudy = core.DRAMCacheStudy
	// SharedVsPrivate compares LLC organizations at equal capacity.
	SharedVsPrivate = core.SharedVsPrivate
)

// PaperCacheSizesMB is the Figure 4-6 x-axis in paper units.
var PaperCacheSizesMB = core.PaperCacheSizesMB

// PaperLineSizes is the Figure 7 x-axis in bytes.
var PaperLineSizes = core.PaperLineSizes

// Telemetry substrate. The simulator is observable end to end: every
// package registers counters into a shared registry, each experiment
// run emits a span tree plus a machine-readable manifest, and the
// sweeps print live progress. All of it is optional and free when off.

// TelemetryRegistry is the lock-free counter/gauge/histogram registry;
// see telemetry.Registry. A nil registry is valid everywhere and costs
// one branch per event.
type TelemetryRegistry = telemetry.Registry

// TelemetrySink bundles a registry, a manifest writer, and a progress
// printer into one handle the runners consume; see telemetry.Sink.
type TelemetrySink = telemetry.Sink

// RunManifest is the machine-readable record of one experiment run;
// see telemetry.Manifest.
type RunManifest = telemetry.Manifest

// NewTelemetrySink builds a sink from its (individually optional)
// parts; see telemetry.NewSink.
var NewTelemetrySink = telemetry.NewSink

// EnableTelemetry installs (and returns) the process-wide default
// registry, so package-level instruments created afterwards are live.
var EnableTelemetry = telemetry.Enable

// WithTelemetry instruments the runs made with this option set:
// counters, span trees, run manifests, and progress lines. Statistics
// are bit-identical with or without it.
var WithTelemetry = core.WithTelemetry
