package cmpmem_test

import (
	"testing"

	"cmpmem"
)

// tiny keeps public-API integration tests fast.
var tiny = cmpmem.Params{Seed: 1, Scale: 1.0 / 512}

func TestPublicAPISweep(t *testing.T) {
	llcs := []cmpmem.CacheConfig{
		{Name: "small", Size: 32 << 10, LineSize: 64, Assoc: 8},
		{Name: "large", Size: 512 << 10, LineSize: 64, Assoc: 8},
	}
	results, sum, err := cmpmem.LLCSweep("FIMI", tiny, cmpmem.SCMP(), llcs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Workload != "FIMI" || sum.Threads != 8 {
		t.Errorf("summary wrong: %+v", sum)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Stats.Misses < results[1].Stats.Misses {
		t.Errorf("smaller cache missed less: %d vs %d",
			results[0].Stats.Misses, results[1].Stats.Misses)
	}
}

func TestPublicAPIWorkloadNames(t *testing.T) {
	names := cmpmem.WorkloadNames()
	if len(names) != 8 {
		t.Fatalf("got %d workloads, want 8", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate workload %q", n)
		}
		seen[n] = true
	}
}

func TestPublicAPIPlatformPresets(t *testing.T) {
	if cmpmem.SCMP().Threads != 8 || cmpmem.MCMP().Threads != 16 || cmpmem.LCMP().Threads != 32 {
		t.Error("platform presets do not match the paper's CMP sizes")
	}
}

func TestPublicAPIHier(t *testing.T) {
	res, err := cmpmem.RunHier("PLSA", tiny, cmpmem.PlatformConfig{Threads: 1},
		cmpmem.PentiumIV(tiny.Scale))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v", res.IPC)
	}
}

func TestPublicAPITraceCapture(t *testing.T) {
	count := 0
	_, err := cmpmem.TraceCapture("SHOT", tiny, cmpmem.PlatformConfig{Threads: 2},
		func(cmpmem.Ref) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("no references captured")
	}
}

func TestPublicAPITable1(t *testing.T) {
	rows := cmpmem.Table1(tiny)
	if len(rows) != 8 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
}

func TestSweepConfigsExported(t *testing.T) {
	if len(cmpmem.CacheSweepConfigs(0)) != len(cmpmem.PaperCacheSizesMB) {
		t.Error("cache sweep config count mismatch")
	}
	if len(cmpmem.LineSweepConfigs(0)) != len(cmpmem.PaperLineSizes) {
		t.Error("line sweep config count mismatch")
	}
}
