// Benchmark harness: one benchmark per table and figure of the paper,
// plus ablation benchmarks for the design choices called out in
// DESIGN.md. Each benchmark iteration executes the full experiment at
// benchScale (1/64 of paper footprints — a quarter of the interactive
// harness scale — so `go test -bench=.` completes in minutes) and
// reports the reproduced quantities as custom metrics alongside the
// timing, so the bench output doubles as a miniature results table.
//
// Regenerate the full-resolution exhibits with `go run ./cmd/cosim all`.
package cmpmem_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"cmpmem"
	"cmpmem/internal/cache"
	"cmpmem/internal/core"
	"cmpmem/internal/dragonhead"
	"cmpmem/internal/fsb"
	"cmpmem/internal/prefetch"
	"cmpmem/internal/stackdist"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/workloads"
)

// benchScale keeps every experiment iteration around a second.
const benchScale = 1.0 / 64

func benchParams() cmpmem.Params { return cmpmem.Params{Seed: 1, Scale: benchScale} }

// BenchmarkTable1 regenerates the input-parameter table (dataset
// construction only — the cheapest exhibit).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := cmpmem.Table1(benchParams())
		if len(rows) != 8 {
			b.Fatal("incomplete table")
		}
	}
}

// BenchmarkTable2 regenerates the workload-characteristics table:
// every workload run single-threaded through the P4-class hierarchy.
func BenchmarkTable2(b *testing.B) {
	var rows []cmpmem.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cmpmem.Table2(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.IPC, "IPC:"+r.Workload)
	}
}

// benchCacheSweep runs one Figure 4/5/6 column (all 8 workloads on one
// platform) and reports each workload's MPKI at the 32 MB paper point.
func benchCacheSweep(b *testing.B, cores int) {
	var series []cmpmem.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = cmpmem.CacheSweep(benchParams(), cores)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if y, err := s.YAt(32); err == nil {
			b.ReportMetric(y, "mpki32MB:"+s.Name)
		}
	}
}

// BenchmarkFig4 is the 8-core SCMP cache-size sweep.
func BenchmarkFig4(b *testing.B) { benchCacheSweep(b, 8) }

// BenchmarkFig5 is the 16-core MCMP cache-size sweep.
func BenchmarkFig5(b *testing.B) { benchCacheSweep(b, 16) }

// BenchmarkFig6 is the 32-core LCMP cache-size sweep.
func BenchmarkFig6(b *testing.B) { benchCacheSweep(b, 32) }

// BenchmarkFig7 is the line-size sensitivity study on the LCMP.
func BenchmarkFig7(b *testing.B) {
	var series []cmpmem.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = cmpmem.LineSweep(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		y64, e1 := s.YAt(64)
		y256, e2 := s.YAt(256)
		if e1 == nil && e2 == nil && y256 > 0 {
			b.ReportMetric(y64/y256, "linegain64to256:"+s.Name)
		}
	}
}

// BenchmarkFig8 is the hardware-prefetching study (serial + 16-thread,
// prefetcher off/on — 32 workload executions per iteration).
func BenchmarkFig8(b *testing.B) {
	var rows []cmpmem.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cmpmem.Fig8(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SerialGainPct, "serialGainPct:"+r.Workload)
		b.ReportMetric(r.ParallelGainPct, "parallelGainPct:"+r.Workload)
	}
}

// BenchmarkAblationQuantum sweeps the DEX time slice: shared-LLC miss
// counts must be nearly quantum-insensitive for shared-working-set
// workloads (DESIGN.md ablation 2).
func BenchmarkAblationQuantum(b *testing.B) {
	for _, quantum := range []uint64{5_000, 50_000, 500_000} {
		b.Run(fmt.Sprintf("quantum=%d", quantum), func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				llc := cache.Config{Name: "LLC", Size: 1 << 20, LineSize: 64, Assoc: 16}
				results, _, err := core.LLCSweep("MDS",
					workloads.Params{Seed: 1, Scale: benchScale},
					core.PlatformConfig{Threads: 8, Quantum: quantum, Seed: 1},
					[]cache.Config{llc})
				if err != nil {
					b.Fatal(err)
				}
				mpki = results[0].MPKI
			}
			b.ReportMetric(mpki, "mpki")
		})
	}
}

// BenchmarkAblationBanking compares Dragonhead's 4-bank CC pipeline
// against a monolithic single-bank configuration: miss counts are
// exactly equal (line-interleaved banking is an exact partition of the
// set space); the benchmark measures the software-pipeline cost
// difference (DESIGN.md ablation 3).
func BenchmarkAblationBanking(b *testing.B) {
	refs := captureRefs(b, "FIMI", 4)
	for _, banks := range []int{1, 4} {
		b.Run(fmt.Sprintf("banks=%d", banks), func(b *testing.B) {
			var misses uint64
			for i := 0; i < b.N; i++ {
				emu, err := dragonhead.New(dragonhead.Config{
					LLC:   cache.Config{Name: "LLC", Size: 1 << 20, LineSize: 64, Assoc: 16},
					Banks: banks,
				})
				if err != nil {
					b.Fatal(err)
				}
				emu.OnMsg(fsb.Message{Kind: fsb.MsgStart})
				for _, r := range refs {
					emu.OnRef(r)
				}
				misses = emu.Stats().Misses
			}
			b.ReportMetric(float64(misses), "misses")
			b.ReportMetric(float64(len(refs))/1e6, "Mrefs")
		})
	}
}

// BenchmarkAblationStack compares the cost of a 7-point cache-size
// sweep done by direct simulation (7 caches on the bus) against a
// single-pass stack-distance analysis (DESIGN.md ablation 4).
func BenchmarkAblationStack(b *testing.B) {
	refs := captureRefs(b, "SNP", 4)
	b.Run("direct-7-caches", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			caches := make([]*cache.Cache, 7)
			for k := range caches {
				c, err := cache.New(cache.Config{
					Name: "LLC", Size: uint64(64<<10) << k, LineSize: 64, Assoc: 0,
				})
				if err != nil {
					b.Fatal(err)
				}
				caches[k] = c
			}
			for _, r := range refs {
				for _, c := range caches {
					c.AccessRef(r)
				}
			}
		}
	})
	b.Run("stackdist-1-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an := stackdist.New(64, 1<<20)
			for _, r := range refs {
				an.Record(r.Addr)
			}
			for k := 0; k < 7; k++ {
				an.MissesForLines((64 << 10 << k) / 64)
			}
		}
	})
}

// BenchmarkAblationPrefetch sweeps the stride prefetcher's degree on a
// streaming workload (DESIGN.md ablation 5).
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, degree := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				p := workloads.Params{Seed: 1, Scale: benchScale}
				pc := core.PlatformConfig{Threads: 1, Seed: 1}
				off, err := core.RunHier("SHOT", p, pc, cmpmem.Xeon16(1, benchScale, nil))
				if err != nil {
					b.Fatal(err)
				}
				pf := prefetch.DefaultConfig(64)
				pf.Degree = degree
				on, err := core.RunHier("SHOT", p, pc, cmpmem.Xeon16(1, benchScale, &pf))
				if err != nil {
					b.Fatal(err)
				}
				gain = (off.Cycles/on.Cycles - 1) * 100
			}
			b.ReportMetric(gain, "gainPct")
		})
	}
}

// BenchmarkAblationReplacement sweeps the LLC replacement policy (the
// paper's FPGA shipped LRU but was reprogrammable): cyclic-reuse
// workloads show Random's thrash resistance; everything else prefers
// LRU.
func BenchmarkAblationReplacement(b *testing.B) {
	refs := captureRefs(b, "SNP", 8)
	for _, policy := range []cache.Policy{cache.LRU, cache.FIFO, cache.Random} {
		b.Run(policy.String(), func(b *testing.B) {
			var misses uint64
			for i := 0; i < b.N; i++ {
				c, err := cache.New(cache.Config{
					Name: "LLC", Size: 1 << 20, LineSize: 64, Assoc: 16, Repl: policy,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range refs {
					c.AccessRef(r)
				}
				misses = c.Stats().Misses
			}
			b.ReportMetric(float64(misses), "misses")
		})
	}
}

// BenchmarkAblationSectors extends Figure 7's large-line finding to its
// bandwidth cost: at a 256 B line, full-line fills quadruple the
// traffic of 64 B lines on sparse access patterns; 64 B sectors keep
// the big-line tag reach while transferring only what is touched.
func BenchmarkAblationSectors(b *testing.B) {
	refs := captureRefs(b, "SNP", 8)
	configs := []cache.Config{
		{Name: "64B-line", Size: 2 << 20, LineSize: 64, Assoc: 16},
		{Name: "256B-line", Size: 2 << 20, LineSize: 256, Assoc: 16},
		{Name: "256B/64B-sector", Size: 2 << 20, LineSize: 256, Assoc: 16, SectorSize: 64},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			var traffic, misses uint64
			for i := 0; i < b.N; i++ {
				c, err := cache.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range refs {
					c.AccessRef(r)
				}
				traffic = c.Stats().TrafficBytes
				misses = c.Stats().Misses
			}
			b.ReportMetric(float64(traffic)/(1<<20), "trafficMB")
			b.ReportMetric(float64(misses), "misses")
		})
	}
}

// BenchmarkDRAMCacheStudy regenerates the conclusions' DRAM-LLC study.
func BenchmarkDRAMCacheStudy(b *testing.B) {
	var rows []cmpmem.DRAMCacheRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cmpmem.DRAMCacheStudy(benchParams(), 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.GainDRAMPct, "dramGainPct:"+r.Workload)
	}
}

// BenchmarkLLCOrganization regenerates the shared-vs-private LLC study.
func BenchmarkLLCOrganization(b *testing.B) {
	var rows []cmpmem.LLCOrgRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cmpmem.SharedVsPrivate(benchParams(), 8, 32)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.SharedMPKI > 0 {
			b.ReportMetric(r.PrivateMPKI/r.SharedMPKI, "privOverShared:"+r.Workload)
		}
	}
}

// BenchmarkAblationCoherence measures what the paper's coherence-free
// shared-LLC methodology hides: the cycle cost of private-cache
// invalidations for a shared-working-set workload.
func BenchmarkAblationCoherence(b *testing.B) {
	for _, coherent := range []bool{false, true} {
		b.Run(fmt.Sprintf("coherent=%v", coherent), func(b *testing.B) {
			var cycles float64
			var invs uint64
			for i := 0; i < b.N; i++ {
				hc := cmpmem.Xeon16(8, benchScale, nil)
				hc.Coherent = coherent
				res, err := core.RunHier("SVM-RFE",
					workloads.Params{Seed: 1, Scale: benchScale},
					core.PlatformConfig{Threads: 8, Seed: 1}, hc)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
				invs = res.Invalidations
			}
			b.ReportMetric(cycles/1e6, "Mcycles")
			b.ReportMetric(float64(invs), "invalidations")
		})
	}
}

// sweepBenchLLCs is an 8-point LLC ladder (64 KB to 8 MB) for the
// serial-vs-parallel sweep benchmarks: enough emulators that the
// batched fan-out's per-snooper workers dominate the wall-clock
// difference on a multicore host.
func sweepBenchLLCs() []cache.Config {
	out := make([]cache.Config, 8)
	for i := range out {
		size := uint64(64<<10) << i
		out[i] = cache.Config{
			Name:     fmt.Sprintf("LLC-%dKB", size>>10),
			Size:     size,
			LineSize: 64,
			Assoc:    16,
		}
	}
	return out
}

// benchLLCSweep runs one workload execution driving all 8 emulated LLC
// configurations; opts select synchronous vs batched-parallel delivery.
// hw_threads records how many hardware threads the host actually
// offers: on a 1-thread container every parallel-delivery "speedup" is
// pure handoff overhead, and the metric makes that legible instead of
// looking like a regression.
func benchLLCSweep(b *testing.B, opts ...cmpmem.RunOption) {
	b.ReportMetric(float64(runtime.NumCPU()), "hw_threads")
	var misses uint64
	for i := 0; i < b.N; i++ {
		results, _, err := cmpmem.LLCSweep("FIMI", benchParams(), cmpmem.SCMP(), sweepBenchLLCs(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		misses = 0
		for _, r := range results {
			misses += r.Stats.Misses
		}
	}
	b.ReportMetric(float64(misses), "misses")
}

// BenchmarkLLCSweepSerial delivers every bus event to all 8 emulators
// synchronously on the execution goroutine (the seed behavior).
func BenchmarkLLCSweepSerial(b *testing.B) {
	benchLLCSweep(b, cmpmem.WithParallelism(1))
}

// BenchmarkLLCSweepParallel uses the batched per-snooper fan-out: the
// execution engine publishes batches and each emulator drains its own
// channel on a dedicated worker. Statistics are bit-identical to the
// serial benchmark (the equivalence test enforces it); only wall-clock
// changes. Results are tracked in BENCH_sweep.json.
func BenchmarkLLCSweepParallel(b *testing.B) {
	benchLLCSweep(b, cmpmem.WithBusBatch(0))
}

// BenchmarkLLCSweepParallelTelemetry is BenchmarkLLCSweepParallel with
// the full telemetry substrate attached — live counter registry, span
// tree, and a manifest per iteration (discarded). The delta against the
// uninstrumented benchmark is the enabled-path overhead; the disabled
// path (no WithTelemetry) is exercised by every other benchmark in this
// file and must stay within noise of the seed.
func BenchmarkLLCSweepParallelTelemetry(b *testing.B) {
	sink := cmpmem.NewTelemetrySink(telemetry.NewRegistry(),
		telemetry.NewManifestWriter(io.Discard), nil)
	benchLLCSweep(b, cmpmem.WithBusBatch(0), cmpmem.WithTelemetry(sink))
}

// BenchmarkEngine measures raw co-simulation throughput: simulated
// instructions per second through the full SoftSDV -> FSB -> Dragonhead
// path (the paper's platform ran at 30-50 MIPS).
func BenchmarkEngine(b *testing.B) {
	var inst uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc := cache.Config{Name: "LLC", Size: 1 << 20, LineSize: 64, Assoc: 16}
		_, sum, err := core.LLCSweep("PLSA",
			workloads.Params{Seed: 1, Scale: benchScale},
			core.PlatformConfig{Threads: 8, Seed: 1},
			[]cache.Config{llc})
		if err != nil {
			b.Fatal(err)
		}
		inst += sum.Instructions
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(inst)/sec/1e6, "MIPS")
	}
}

// captureRefs records a workload's reference stream once for replay
// benchmarks.
func captureRefs(b *testing.B, name string, threads int) []trace.Ref {
	b.Helper()
	var refs []trace.Ref
	_, err := core.TraceCapture(name,
		workloads.Params{Seed: 1, Scale: benchScale},
		core.PlatformConfig{Threads: threads, Seed: 1},
		func(r trace.Ref) { refs = append(refs, r) })
	if err != nil {
		b.Fatal(err)
	}
	return refs
}

// BenchmarkCacheAccess measures the touchLine hot path (sentinel-tag
// lookup, MRU fast path) on a real captured reference stream.
func BenchmarkCacheAccess(b *testing.B) {
	refs := captureRefs(b, "FIMI", 8)
	c, err := cache.New(cache.Config{Name: "LLC", Size: 1 << 20, LineSize: 64, Assoc: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range refs {
			c.AccessRef(r)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*float64(len(refs))/sec/1e6, "Mrefs/s")
	}
}

// BenchmarkCacheAccessBatch measures the data-oriented batch entry:
// the same captured stream as BenchmarkCacheAccess applied 64 refs per
// AccessBatch call, so per-ref counter read-modify-writes collapse into
// register accumulators flushed once per batch.
func BenchmarkCacheAccessBatch(b *testing.B) {
	refs := captureRefs(b, "FIMI", 8)
	c, err := cache.New(cache.Config{Name: "LLC", Size: 1 << 20, LineSize: 64, Assoc: 16})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(refs); off += batch {
			end := off + batch
			if end > len(refs) {
				end = len(refs)
			}
			c.AccessBatch(refs[off:end])
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*float64(len(refs))/sec/1e6, "Mrefs/s")
	}
}

// BenchmarkShardedRun replays one captured stream through the
// Dragonhead emulator with the intra-run sharded execution path at 1,
// 2, and 4 bank shards. Statistics are bit-identical across the legs
// (TestSerialShardedEquivalence enforces it); the wall-clock difference
// is the sharding payoff — or, on a 1-hardware-thread host (see the
// hw_threads metric), the pure handoff overhead.
func BenchmarkShardedRun(b *testing.B) {
	refs := captureRefs(b, "FIMI", 8)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(runtime.NumCPU()), "hw_threads")
			var misses uint64
			for i := 0; i < b.N; i++ {
				emu, err := dragonhead.New(dragonhead.Config{
					LLC:    cache.Config{Name: "LLC", Size: 1 << 20, LineSize: 64, Assoc: 16},
					Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				emu.OnMsg(fsb.Message{Kind: fsb.MsgStart})
				for _, r := range refs {
					emu.OnRef(r)
				}
				emu.Finalize()
				misses = emu.Stats().Misses
			}
			b.StopTimer()
			b.ReportMetric(float64(misses), "misses")
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)*float64(len(refs))/sec/1e6, "Mrefs/s")
			}
		})
	}
}

// BenchmarkShardedRunTraced is the 4-shard run with a request span
// attached: shard workers accumulate per-worker busy time on the bus
// delivery hot path and attach it post-hoc as concurrent shard spans.
// The delta against BenchmarkShardedRun/shards=4 is the traced-path
// overhead; untraced runs pay one predictable branch per delivery.
func BenchmarkShardedRunTraced(b *testing.B) {
	refs := captureRefs(b, "FIMI", 8)
	var misses uint64
	var root *telemetry.Span
	for i := 0; i < b.N; i++ {
		root = telemetry.StartSpan("request")
		emu, err := dragonhead.New(dragonhead.Config{
			LLC:    cache.Config{Name: "LLC", Size: 1 << 20, LineSize: 64, Assoc: 16},
			Shards: 4,
			Trace:  root,
		})
		if err != nil {
			b.Fatal(err)
		}
		emu.OnMsg(fsb.Message{Kind: fsb.MsgStart})
		for _, r := range refs {
			emu.OnRef(r)
		}
		emu.Finalize()
		root.End()
		misses = emu.Stats().Misses
	}
	b.StopTimer()
	b.ReportMetric(float64(misses), "misses")
	if root.Find("shards") == nil {
		b.Fatal("traced run attached no shard spans")
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*float64(len(refs))/sec/1e6, "Mrefs/s")
	}
}

// benchExperimentFlow is the paper's own operational flow on one
// workload: the Dragonhead board holds ONE cache configuration at a
// time, so the Figure 4 cache-size sweep plus the Figure 7 line-size
// sweep is 14 independent experiments, each historically re-running the
// workload (reprogram, re-execute, re-snoop). With the trace substrate
// the same 14 experiments execute the workload once and replay the
// memoized stream 13 times. MDS is the flow workload: the heaviest
// compute per bus event (Table 2's CPU-bound extreme), i.e. the
// workload where re-execution hurts the most.
func benchExperimentFlow(b *testing.B, opts ...cmpmem.RunOption) {
	configs := append(cmpmem.CacheSweepConfigs(benchScale), cmpmem.LineSweepConfigs(benchScale)...)
	var misses uint64
	for i := 0; i < b.N; i++ {
		misses = 0
		for _, cfg := range configs {
			results, _, err := cmpmem.LLCSweep("MDS", benchParams(), cmpmem.SCMP(),
				[]cache.Config{cfg}, opts...)
			if err != nil {
				b.Fatal(err)
			}
			misses += results[0].Stats.Misses
		}
	}
	b.ReportMetric(float64(misses), "misses")
	b.ReportMetric(float64(len(configs)), "experiments")
}

// benchReplayStore is pre-warmed once so BenchmarkReplayThroughput
// measures the steady state of a memoized session: every experiment
// serves from the captured stream. The one-time capture cost amortizes
// to zero as experiments accumulate.
var benchReplayStore *tracestore.Store

func warmReplayStore(b *testing.B) *tracestore.Store {
	b.Helper()
	if benchReplayStore == nil {
		benchReplayStore = tracestore.New(0, "")
		cfg := cmpmem.CacheSweepConfigs(benchScale)[0]
		if _, _, err := cmpmem.LLCSweep("MDS", benchParams(), cmpmem.SCMP(),
			[]cache.Config{cfg}, cmpmem.WithTraceReuse(benchReplayStore)); err != nil {
			b.Fatal(err)
		}
	}
	return benchReplayStore
}

// BenchmarkReplayThroughput: the 14-experiment CacheSweep + LineSweep
// flow served from the memoized trace — no workload execution, no
// scheduler, just the zero-alloc replay engine decoding the v2 stream
// into the emulator. Compare against BenchmarkSweepExecuteEveryTime in
// BENCH_sweep.json.
func BenchmarkReplayThroughput(b *testing.B) {
	store := warmReplayStore(b)
	b.ResetTimer()
	benchExperimentFlow(b, cmpmem.WithTraceReuse(store))
}

// BenchmarkSweepExecuteEveryTime is the pre-substrate behavior: every
// experiment re-executes the workload from scratch.
func BenchmarkSweepExecuteEveryTime(b *testing.B) {
	benchExperimentFlow(b)
}

// BenchmarkSweepPlanner is the same 14-experiment MDS flow compiled by
// the sweep planner: the 8 oracle-answerable 64 B configs (one of them
// a geometry shared between the two sub-sweeps) collapse into a single
// analytic stack-distance pass, the 6 other-line-size configs ride the
// same pass as emulators, so the whole flow costs ONE replay of the
// memoized stream instead of 14. Results are bit-identical to the
// replay benchmark (the planner equivalence tests and `cosim -verify`
// enforce it); compare ns/op against BenchmarkReplayThroughput and
// BenchmarkSweepExecuteEveryTime in BENCH_sweep.json.
func BenchmarkSweepPlanner(b *testing.B) {
	store := warmReplayStore(b)
	grids := [][]cache.Config{
		cmpmem.CacheSweepConfigs(benchScale),
		cmpmem.LineSweepConfigs(benchScale),
	}
	plan, err := core.PlanSweep(append(append([]cache.Config{}, grids[0]...), grids[1]...), core.EngineAuto)
	if err != nil {
		b.Fatal(err)
	}
	var misses uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := cmpmem.CombinedSweep("MDS", benchParams(), cmpmem.SCMP(), grids,
			cmpmem.WithTraceReuse(store))
		if err != nil {
			b.Fatal(err)
		}
		misses = 0
		for _, grid := range res {
			for _, r := range grid {
				misses += r.Stats.Misses
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(misses), "misses")
	b.ReportMetric(float64(len(grids[0])+len(grids[1])), "experiments")
	b.ReportMetric(float64(plan.Passes()), "tracePasses")
}

// BenchmarkSampledSweep is the same 14-experiment MDS flow in the
// approximate fast tier (WithSampling): the memoized stream is
// fingerprinted once, clustered, and only the representative windows
// are replayed per canonical geometry; every result is an extrapolated
// estimate carrying its own confidence interval. replayedFrac is the
// fast tier's acceptance budget — it must stay at or below 0.25 of the
// full trace (TestSampledSweepReplayFraction pins it) — and the
// ns/op delta against BenchmarkSweepPlanner in BENCH_sweep.json is the
// accuracy-for-time trade the tier buys.
func BenchmarkSampledSweep(b *testing.B) {
	store := warmReplayStore(b)
	grids := [][]cache.Config{
		cmpmem.CacheSweepConfigs(benchScale),
		cmpmem.LineSweepConfigs(benchScale),
	}
	var estMisses, replayed, total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := cmpmem.CombinedSweep("MDS", benchParams(), cmpmem.SCMP(), grids,
			cmpmem.WithTraceReuse(store), cmpmem.WithSampling(cmpmem.SamplingFast))
		if err != nil {
			b.Fatal(err)
		}
		estMisses = 0
		for _, grid := range res {
			for _, r := range grid {
				estMisses += r.Stats.Misses
				if r.Sampling == nil {
					b.Fatal("sampled sweep attached no SamplingEstimate")
				}
				replayed, total = r.Sampling.ReplayedRefs, r.Sampling.TotalRefs
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(estMisses), "estMisses")
	b.ReportMetric(float64(len(grids[0])+len(grids[1])), "experiments")
	if total > 0 {
		b.ReportMetric(float64(replayed)/float64(total), "replayedFrac")
	}
}
